//===- baselines/AflFuzzer.cpp - AFL-style mutational fuzzer --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/AflFuzzer.h"

#include "support/Rng.h"

#include <algorithm>
#include <array>
#include <cstring>

using namespace pfuzz;

namespace {

constexpr size_t MapSize = 1 << 16;

/// AFL's hit-count bucketing: collapses counts into 8 classes so loop
/// iteration counts don't register as endless novelty.
uint8_t bucketOf(uint32_t Count) {
  if (Count == 0)
    return 0;
  if (Count == 1)
    return 1 << 0;
  if (Count == 2)
    return 1 << 1;
  if (Count == 3)
    return 1 << 2;
  if (Count <= 7)
    return 1 << 3;
  if (Count <= 15)
    return 1 << 4;
  if (Count <= 31)
    return 1 << 5;
  if (Count <= 127)
    return 1 << 6;
  return 1 << 7;
}

/// Fills \p Map with bucketed edge hits from a branch trace, hashing
/// (previous, current) pairs like AFL's shared-memory bitmap.
void traceToMap(const std::vector<uint32_t> &Trace,
                std::array<uint32_t, MapSize> &Hits) {
  Hits.fill(0);
  uint32_t Prev = 0;
  for (uint32_t Entry : Trace) {
    uint32_t Cur = (Entry * 2654435761u) & (MapSize - 1);
    ++Hits[Cur ^ Prev];
    Prev = Cur >> 1;
  }
}

struct Seed {
  std::string Data;
  uint32_t FoundNew = 0; // how many virgin map bytes it lit up
};

const char InterestingBytes[] = {'\0', '\n', ' ',  '0',  '9',  'a',
                                 'z',  'A',  '{',  '}',  '[',  ']',
                                 '(',  ')',  '"',  ',',  ';',  '=',
                                 '<',  '>',  '/',  '\\', '\'', '\x7f'};

class AflCampaign {
public:
  AflCampaign(const Subject &S, const FuzzerOptions &Opts,
              const AflOptions &Afl)
      : S(S), Opts(Opts), Afl(Afl), R(Opts.Seed) {
    Virgin.fill(0);
  }

  FuzzReport run();

private:
  /// Executes \p Input, updates the virgin map / queue / valid coverage.
  void execOne(const std::string &Input);

  std::string mutate(const std::string &Base);

  const Subject &S;
  const FuzzerOptions &Opts;
  AflOptions Afl;
  Rng R;
  std::array<uint8_t, MapSize> Virgin;
  std::array<uint32_t, MapSize> Scratch;
  std::vector<Seed> Queue;
  FuzzReport Report;
  RunResult RR; // recycled across executions
  std::vector<uint32_t> Covered;
};

} // namespace

void AflCampaign::execOne(const std::string &Input) {
  // Comparison-progress feedback needs the comparison events (the CTP
  // transformation would bake the extra edges into the binary; here the
  // Full-mode runtime supplies them).
  InstrumentationMode Mode = Afl.Cmp == CmpFeedback::None
                                 ? InstrumentationMode::CoverageOnly
                                 : InstrumentationMode::Full;
  S.execute(Input, Mode, RR); // recycles RR's trace buffers
  ++Report.Executions;
  traceToMap(RR.BranchTrace, Scratch);
  if (Afl.Cmp != CmpFeedback::None) {
    // One synthetic edge per (comparison, matched prefix length): the
    // nested-if expansion of strcmp that AFL-CTP performs.
    for (const ComparisonEvent &E : RR.Comparisons) {
      if (E.Kind != CompareKind::StrEq)
        continue;
      std::string_view Actual = RR.actual(E);
      std::string_view Expected = RR.expected(E);
      uint32_t Prefix = 0;
      while (Prefix < Actual.size() && Prefix < Expected.size() &&
             Actual[Prefix] == Expected[Prefix])
        ++Prefix;
      uint32_t Feature = 0x9DC5u + Prefix * 0x01000193u;
      if (Afl.Cmp == CmpFeedback::PerKeyword)
        for (char C : Expected)
          Feature = (Feature ^ static_cast<unsigned char>(C)) * 0x01000193u;
      ++Scratch[Feature & (MapSize - 1)];
    }
  }
  uint32_t NewBytes = 0;
  for (size_t I = 0; I != MapSize; ++I) {
    if (Scratch[I] == 0)
      continue;
    uint8_t Bucket = bucketOf(Scratch[I]);
    if ((Virgin[I] & Bucket) == 0) {
      Virgin[I] |= Bucket;
      ++NewBytes;
    }
  }
  if (NewBytes != 0 && Input.size() <= Opts.MaxInputLen)
    Queue.push_back({Input, NewBytes});
  if (RR.ExitCode == 0) {
    if (Opts.OnValidInput)
      Opts.OnValidInput(Input);
    bool NewValidCoverage = false;
    RR.coveredBranches(Covered);
    for (uint32_t B : Covered)
      if (Report.ValidBranches.set(B))
        NewValidCoverage = true;
    if (NewValidCoverage)
      Report.ValidInputs.push_back(Input);
  }
}

std::string AflCampaign::mutate(const std::string &Base) {
  std::string Out = Base;
  // Havoc: a stacked sequence of 1..8 random mutations.
  uint64_t Stack = 1 + R.below(8);
  for (uint64_t I = 0; I != Stack; ++I) {
    switch (R.below(8)) {
    case 0: // flip a bit
      if (!Out.empty()) {
        size_t Pos = R.below(Out.size());
        Out[Pos] = static_cast<char>(Out[Pos] ^ (1 << R.below(8)));
      }
      break;
    case 1: // overwrite with a random byte
      if (!Out.empty())
        Out[R.below(Out.size())] = static_cast<char>(R.nextByte());
      break;
    case 2: // overwrite with an interesting byte
      if (!Out.empty())
        Out[R.below(Out.size())] =
            InterestingBytes[R.below(sizeof(InterestingBytes))];
      break;
    case 3: { // insert a random byte
      size_t Pos = R.below(Out.size() + 1);
      Out.insert(Out.begin() + Pos, static_cast<char>(R.nextByte()));
      break;
    }
    case 4: { // insert an interesting byte
      size_t Pos = R.below(Out.size() + 1);
      Out.insert(Out.begin() + Pos,
                 InterestingBytes[R.below(sizeof(InterestingBytes))]);
      break;
    }
    case 5: // delete a byte
      if (!Out.empty())
        Out.erase(Out.begin() + R.below(Out.size()));
      break;
    case 6: { // clone a block
      if (!Out.empty() && Out.size() < Opts.MaxInputLen) {
        size_t From = R.below(Out.size());
        size_t Len = 1 + R.below(std::min<size_t>(Out.size() - From, 8));
        size_t To = R.below(Out.size() + 1);
        Out.insert(To, Out.substr(From, Len));
      }
      break;
    }
    case 7: { // splice with another queue entry
      if (!Queue.empty()) {
        const std::string &Other = R.pick(Queue).Data;
        if (!Other.empty()) {
          size_t Cut = R.below(Out.size() + 1);
          size_t OtherCut = R.below(Other.size());
          Out = Out.substr(0, Cut) + Other.substr(OtherCut);
        }
      }
      break;
    }
    }
    if (Out.size() > Opts.MaxInputLen)
      Out.resize(Opts.MaxInputLen);
  }
  return Out;
}

FuzzReport AflCampaign::run() {
  // The paper gives AFL a single space character as the starting corpus.
  execOne(" ");
  uint64_t SampleEvery = std::max<uint64_t>(1, Opts.MaxExecutions / 256);
  while (Report.Executions < Opts.MaxExecutions) {
    // Pick a seed: bias towards recent finds and small inputs.
    const Seed *Chosen = nullptr;
    if (!Queue.empty()) {
      size_t Tries = 3;
      for (size_t T = 0; T != Tries; ++T) {
        const Seed &Cand = Queue[R.below(Queue.size())];
        if (Chosen == nullptr || Cand.Data.size() < Chosen->Data.size())
          Chosen = &Cand;
      }
    }
    std::string Base = Chosen != nullptr ? Chosen->Data : " ";
    uint64_t Energy = 32 + R.below(64);
    for (uint64_t E = 0;
         E != Energy && Report.Executions < Opts.MaxExecutions; ++E) {
      execOne(mutate(Base));
      if (Report.Executions % SampleEvery == 0)
        Report.CoverageTimeline.emplace_back(Report.Executions,
                                             Report.ValidBranches.size());
    }
  }
  Report.CoverageTimeline.emplace_back(Report.Executions,
                                       Report.ValidBranches.size());
  return std::move(Report);
}

AflFuzzer::AflFuzzer(AflOptions Options) : Options(Options) {}

FuzzReport AflFuzzer::run(const Subject &S, const FuzzerOptions &Opts) {
  return AflCampaign(S, Opts, Options).run();
}
