//===- baselines/KleeFuzzer.h - Constraint-based baseline --------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "semantic" baseline standing in for KLEE: a concolic breadth-first
/// path explorer. Each executed input yields the full ordered set of
/// comparisons on the path (including implicit-flow ones — a symbolic
/// executor does not depend on dynamic taint); for every comparison the
/// explorer forks one state per alternative operand value, substituting it
/// at the comparison's input positions while keeping the suffix. States
/// are explored breadth-first from the empty input.
///
/// Like the paper's KLEE configuration, only inputs that cover new code
/// are emitted. The state queue is what explodes on deep languages — the
/// combinatorial path explosion the paper attributes KLEE's mjs failure
/// to — so shallow languages (json) are covered nearly exhaustively while
/// mjs exhausts the budget within a few characters of depth.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_BASELINES_KLEEFUZZER_H
#define PFUZZ_BASELINES_KLEEFUZZER_H

#include "core/Fuzzer.h"

namespace pfuzz {

/// KLEE-style concolic breadth-first explorer.
class KleeFuzzer final : public Fuzzer {
public:
  std::string_view name() const override { return "klee"; }

  FuzzReport run(const Subject &S, const FuzzerOptions &Opts) override;
};

} // namespace pfuzz

#endif // PFUZZ_BASELINES_KLEEFUZZER_H
