//===- runtime/PrefixResumeCache.cpp - Prefix-resumption engine -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PrefixResumeCache.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace pfuzz;

//===----------------------------------------------------------------------===//
// PrefixResumeCache
//===----------------------------------------------------------------------===//

void PrefixResumeCache::countLength(size_t Len, int Delta) {
  if (Len >= LenCount.size())
    LenCount.resize(Len + 1, 0);
  uint32_t &Count = LenCount[Len];
  Count += Delta;
  // Keep the sorted distinct-length index in sync on the 0 <-> 1
  // transitions; inserts and evictions are rare next to probes, so the
  // O(distinct lengths) vector shuffle is the cheap side of the trade.
  auto It = std::lower_bound(SortedLens.begin(), SortedLens.end(),
                             static_cast<uint32_t>(Len));
  if (Delta > 0 && Count == 1)
    SortedLens.insert(It, static_cast<uint32_t>(Len));
  else if (Delta < 0 && Count == 0)
    SortedLens.erase(It);
}

size_t PrefixResumeCache::longestLengthAtMost(size_t Len) const {
  auto It = std::upper_bound(SortedLens.begin(), SortedLens.end(),
                             Len > UINT32_MAX ? UINT32_MAX
                                              : static_cast<uint32_t>(Len));
  return It == SortedLens.begin() ? 0 : *std::prev(It);
}

PrefixResumeCache::Entry *PrefixResumeCache::lookup(uint64_t Hash,
                                                    std::string_view Prefix) {
  auto It = Index.find(Hash);
  if (It == Index.end())
    return nullptr;
  Entry &E = *It->second;
  // A colliding hash whose bytes differ is a miss: resuming it would
  // continue a different parse. The byte compare keeps wrong resumes
  // structurally impossible.
  if (E.Prefix != Prefix)
    return nullptr;
  assert(E.Final && "live checkpoint without its shared final result");
  Lru.splice(Lru.begin(), Lru, It->second);
  return &E;
}

const PrefixResumeCache::Entry *
PrefixResumeCache::peek(uint64_t Hash, std::string_view Prefix) const {
  auto It = Index.find(Hash);
  if (It == Index.end())
    return nullptr;
  const Entry &E = *It->second;
  return E.Prefix == Prefix ? &E : nullptr;
}

PrefixResumeCache::Entry *
PrefixResumeCache::insertSlot(uint64_t Hash, std::string_view Prefix,
                              uint64_t *EvictedOut) {
  if (Max == 0)
    return nullptr;
  auto It = Index.find(Hash);
  if (It != Index.end()) {
    // Re-mint in place (same prefix re-executed, or a collision being
    // overwritten — either way the slot is replaced wholesale).
    Entry &E = *It->second;
    if (E.Prefix.size() != Prefix.size()) {
      countLength(E.Prefix.size(), -1);
      countLength(Prefix.size(), +1);
    }
    E.Prefix.assign(Prefix);
    E.Serial = ++NextSerial;
    Lru.splice(Lru.begin(), Lru, It->second);
    return &E;
  }
  if (Index.size() >= Max) {
    // Evict the least recently used entry; recycle its node (and its
    // grown stack buffer) as the new slot. Dropping Final here releases
    // its shared result back to the engine's pool as soon as the last
    // sibling rung goes.
    auto Last = std::prev(Lru.end());
    countLength(Last->Prefix.size(), -1);
    Index.erase(Last->Hash);
    if (EvictedOut)
      ++*EvictedOut;
    Last->Stack.reset();
    Last->Final.reset();
    Last->Hash = Hash;
    Last->Prefix.assign(Prefix);
    Last->Serial = ++NextSerial;
    Lru.splice(Lru.begin(), Lru, Last);
    countLength(Prefix.size(), +1);
    Index.emplace(Hash, Lru.begin());
    return &*Lru.begin();
  }
  Lru.emplace_front();
  Entry &E = Lru.front();
  E.Hash = Hash;
  E.Prefix.assign(Prefix);
  E.Serial = ++NextSerial;
  countLength(Prefix.size(), +1);
  Index.emplace(Hash, Lru.begin());
  return &E;
}

//===----------------------------------------------------------------------===//
// PrefixResumeEngine
//===----------------------------------------------------------------------===//

PrefixResumeEngine::PrefixResumeEngine(
    std::function<int(ExecutionContext &)> RunBody, size_t CacheSize,
    size_t MinInput, uint32_t RungStride, uint32_t RungCap)
    : RunBody(std::move(RunBody)), Cache(CacheSize), MinInput(MinInput),
      RungStride(RungStride), RungCap(RungCap) {}

PrefixResumeEngine::~PrefixResumeEngine() {
  assert(Ctx == nullptr && "engine destroyed mid-execution");
}

void PrefixResumeEngine::fiberMain(void *SelfV) {
  auto *Self = static_cast<PrefixResumeEngine *>(SelfV);
  Self->ExitCode = Self->RunBody(*Self->Ctx);
}

std::shared_ptr<RunResult> PrefixResumeEngine::acquireFinalSlot() {
  // use_count() == 1 means only the pool still references the slot:
  // every checkpoint that shared it has been evicted, so its buffers are
  // free to hold a new run's final. The pool is bounded by the cache
  // capacity plus the run in flight, so the scan stays short.
  for (std::shared_ptr<RunResult> &Slot : FinalPool)
    if (Slot.use_count() == 1)
      return Slot;
  FinalPool.push_back(std::make_shared<RunResult>());
  return FinalPool.back();
}

size_t PrefixResumeEngine::warmPrefixLength(std::string_view Input) const {
  size_t Best = 0;
  uint64_t H = 0xCBF29CE484222325ULL;
  size_t Pos = 0;
  // Ascending walk of the cached lengths, extending one rolling FNV-1a
  // hash — O(|Input|) hashing total however many lengths are cached.
  for (uint32_t L : Cache.lengths()) {
    if (L > Input.size())
      break;
    while (Pos < L) {
      H ^= static_cast<unsigned char>(Input[Pos]);
      H *= 0x100000001B3ULL;
      ++Pos;
    }
    if (Cache.peek(H, Input.substr(0, L)))
      Best = L;
  }
  return Best;
}

const RunResult &PrefixResumeEngine::execute(std::string_view Input,
                                             RunResult &Scratch) {
  assert(available() && "engine constructed without fiber support");
  if (Input.size() < MinInput) {
    // Below break-even the bookkeeping costs more than it skips: run
    // plainly on this stack, no hook, no stats — indistinguishable from
    // a non-engine execution.
    new (CtxMem) ExecutionContext(Input, InstrumentationMode::Full,
                                  std::move(Scratch));
    Ctx = reinterpret_cast<ExecutionContext *>(CtxMem);
    Ctx->setExitCode(RunBody(*Ctx));
    Scratch = Ctx->takeResult();
    Ctx->~ExecutionContext();
    Ctx = nullptr;
    return Scratch;
  }
  // Rolling FNV-1a (the same fold as core's candidate hashing): all
  // prefix hashes of the input in one pass.
  size_t N = Input.size();
  PrefixHash.resize(N + 1);
  uint64_t H = 0xCBF29CE484222325ULL;
  PrefixHash[0] = H;
  for (size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Input[I]);
    H *= 0x100000001B3ULL;
    PrefixHash[I + 1] = H;
  }
  // Longest cached prefix wins: every skipped byte is execution we do
  // not repeat. L == N re-enters a whole earlier run of this exact input
  // at its suspension point. The sorted length index jumps straight
  // between lengths that can hit.
  PrefixResumeCache::Entry *Hit = nullptr;
  ++Stats.Probes;
  for (size_t L = Cache.longestLengthAtMost(N); L != 0;
       L = Cache.longestLengthAtMost(L - 1))
    if ((Hit = Cache.lookup(PrefixHash[L], Input.substr(0, L))))
      break;
  // The context is placement-constructed at the same address every run:
  // subject frames on the fiber hold references to it, and a restored
  // frame must find the live context where the checkpointed one was.
  new (CtxMem) ExecutionContext(Input, InstrumentationMode::Full,
                                std::move(Scratch));
  Ctx = reinterpret_cast<ExecutionContext *>(CtxMem);
  Ctx->setPastEndHook(this);
  MintedThisRun = false;
  PendingMints.clear();
  ExitCode = 1;
  // Arm the ladder: the first rung sits at the first stride multiple
  // past the resume point (everything below is already covered by the
  // checkpoint we resume from or by this run's shorter siblings).
  size_t ResumeFrom = Hit ? Hit->Prefix.size() : 0;
  CurRungDepth = 0;
  RungsLeft = RungStride == 0 ? 0 : RungCap;
  if (RungsLeft > 0)
    Ctx->setRungLimit((ResumeFrom / RungStride + 1) *
                      static_cast<uint64_t>(RungStride));
  if (Hit) {
    ++Stats.Hits;
    ++Stats.HitsByRung[std::min<size_t>(Hit->RungDepth,
                                        ResumeStats::RungBuckets - 1)];
    Stats.BytesSkipped += Hit->Prefix.size();
    {
      // Times the state restoration alone (snapshot copy-in + remap),
      // not the resumed execution that follows it.
      TELEMETRY_SPAN("resume_restore");
      Ctx->restoreFrom(*Hit->Final, Hit->Mark, Input);
    }
    F.resumeAt(Hit->Stack);
  } else {
    ++Stats.ColdRuns;
    F.run(&PrefixResumeEngine::fiberMain, this);
  }
  assert(F.finished() && "subject yielded instead of returning");
  Ctx->setExitCode(ExitCode);
  const RunResult *Ret;
  if (PendingMints.empty()) {
    Scratch = Ctx->takeResult();
    Ret = &Scratch;
  } else {
    // The run minted checkpoints: its final result moves into a pooled
    // slot they all share (RunMark truncation reconstructs each rung's
    // mid-run state), and the slot's previous buffers rotate back into
    // the caller's scratch — no copy, no steady-state allocation.
    std::shared_ptr<RunResult> Slot = acquireFinalSlot();
    RunResult Final = Ctx->takeResult();
    std::swap(Final, *Slot);
    Scratch = std::move(Final);
    for (const PendingMint &P : PendingMints)
      if (P.E->Serial == P.Serial)
        P.E->Final = Slot;
    Ret = Slot.get();
  }
  Ctx->~ExecutionContext();
  Ctx = nullptr;
  return *Ret;
}

bool PrefixResumeEngine::mintCheckpoint(ExecutionContext &C, size_t PrefixLen,
                                        uint32_t RungDepth) {
  PrefixResumeCache::Entry *E = Cache.insertSlot(
      PrefixHash[PrefixLen], C.input().substr(0, PrefixLen), &Stats.Evicted);
  if (!E)
    return false;
  E->RungDepth = RungDepth;
  C.markTo(E->Mark);
  // The shared final is bound at the epilogue (the run has not finished
  // recording it yet); a null Final never becomes visible to lookups
  // because the engine is non-reentrant — no probe can run before this
  // run's epilogue stamps it or recycles the entry.
  E->Final.reset();
  E->Stack.reset();
  if (Fiber::checkpoint(E->Stack)) {
    // A later execute() restored this very point with a different input.
    // E must not be touched here — it may have been evicted since the
    // capture; the caller (peekChar) re-checks its bounds.
    return true;
  }
  PendingMints.push_back({E, E->Serial});
  if (RungDepth == 0)
    ++Stats.Minted;
  else
    ++Stats.RungsMinted;
  return false;
}

bool PrefixResumeEngine::onPastEnd(ExecutionContext &C) {
  // One past-end checkpoint per run, at the first past-end read: that is
  // where every extension of the current input diverges from it, and the
  // state there depends only on the in-bounds bytes all extensions share.
  if (MintedThisRun)
    return false;
  MintedThisRun = true;
  std::string_view In = C.input();
  if (In.empty())
    return false; // a zero-length prefix skips nothing
  return mintCheckpoint(C, In.size(), /*RungDepth=*/0);
}

bool PrefixResumeEngine::onRungReached(ExecutionContext &C, uint32_t Index) {
  // A ladder rung: the read about to observe byte Index has seen only
  // bytes below the armed limit, so Input[0..Index) is a valid resume
  // prefix for any input sharing it — exactly the shape of substitution
  // candidates spliced below their parent's EOF point.
  if (RungsLeft == 0) {
    C.setRungLimit(ExecutionContext::NoRungLimit);
    return false;
  }
  if (mintCheckpoint(C, Index, CurRungDepth + 1))
    return true;
  // Capture path only: advance the ladder. (On the restore path the
  // context and engine already carry the restoring run's state.)
  ++CurRungDepth;
  if (--RungsLeft == 0)
    C.setRungLimit(ExecutionContext::NoRungLimit);
  else
    C.setRungLimit((static_cast<uint64_t>(Index) / RungStride + 1) *
                   RungStride);
  return false;
}
