//===- runtime/PrefixResumeCache.cpp - Prefix-resumption engine -----------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PrefixResumeCache.h"

#include <cassert>

using namespace pfuzz;

//===----------------------------------------------------------------------===//
// PrefixResumeCache
//===----------------------------------------------------------------------===//

void PrefixResumeCache::countLength(size_t Len, int Delta) {
  if (Len >= LenCount.size())
    LenCount.resize(Len + 1, 0);
  LenCount[Len] += Delta;
}

PrefixResumeCache::Entry *PrefixResumeCache::lookup(uint64_t Hash,
                                                    std::string_view Prefix) {
  auto It = Index.find(Hash);
  if (It == Index.end())
    return nullptr;
  Entry &E = *It->second;
  // A colliding hash whose bytes differ is a miss: resuming it would
  // continue a different parse. The byte compare keeps wrong resumes
  // structurally impossible.
  if (E.Prefix != Prefix)
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second);
  return &E;
}

PrefixResumeCache::Entry *
PrefixResumeCache::insertSlot(uint64_t Hash, std::string_view Prefix,
                              uint64_t *EvictedOut) {
  if (Max == 0)
    return nullptr;
  auto It = Index.find(Hash);
  if (It != Index.end()) {
    // Re-mint in place (same prefix re-executed, or a collision being
    // overwritten — either way the slot is replaced wholesale).
    Entry &E = *It->second;
    if (E.Prefix.size() != Prefix.size()) {
      countLength(E.Prefix.size(), -1);
      countLength(Prefix.size(), +1);
    }
    E.Prefix.assign(Prefix);
    Lru.splice(Lru.begin(), Lru, It->second);
    return &E;
  }
  if (Index.size() >= Max) {
    // Evict the least recently used entry; recycle its node (and its
    // grown stack/snapshot buffers) as the new slot.
    auto Last = std::prev(Lru.end());
    countLength(Last->Prefix.size(), -1);
    Index.erase(Last->Hash);
    if (EvictedOut)
      ++*EvictedOut;
    Last->Stack.reset();
    Last->Hash = Hash;
    Last->Prefix.assign(Prefix);
    Lru.splice(Lru.begin(), Lru, Last);
    countLength(Prefix.size(), +1);
    Index.emplace(Hash, Lru.begin());
    return &*Lru.begin();
  }
  Lru.emplace_front();
  Entry &E = Lru.front();
  E.Hash = Hash;
  E.Prefix.assign(Prefix);
  countLength(Prefix.size(), +1);
  Index.emplace(Hash, Lru.begin());
  return &E;
}

//===----------------------------------------------------------------------===//
// PrefixResumeEngine
//===----------------------------------------------------------------------===//

PrefixResumeEngine::PrefixResumeEngine(
    std::function<int(ExecutionContext &)> RunBody, size_t CacheSize,
    size_t MinInput)
    : RunBody(std::move(RunBody)), Cache(CacheSize), MinInput(MinInput) {}

PrefixResumeEngine::~PrefixResumeEngine() {
  assert(Ctx == nullptr && "engine destroyed mid-execution");
}

void PrefixResumeEngine::fiberMain(void *SelfV) {
  auto *Self = static_cast<PrefixResumeEngine *>(SelfV);
  Self->ExitCode = Self->RunBody(*Self->Ctx);
}

void PrefixResumeEngine::execute(std::string_view Input, RunResult &InOut) {
  assert(available() && "engine constructed without fiber support");
  if (Input.size() < MinInput) {
    // Below break-even the bookkeeping costs more than it skips: run
    // plainly on this stack, no hook, no stats — indistinguishable from
    // a non-engine execution.
    new (CtxMem) ExecutionContext(Input, InstrumentationMode::Full,
                                  std::move(InOut));
    Ctx = reinterpret_cast<ExecutionContext *>(CtxMem);
    Ctx->setExitCode(RunBody(*Ctx));
    InOut = Ctx->takeResult();
    Ctx->~ExecutionContext();
    Ctx = nullptr;
    return;
  }
  // Rolling FNV-1a (the same fold as core's candidate hashing): all
  // prefix hashes of the input in one pass.
  size_t N = Input.size();
  PrefixHash.resize(N + 1);
  uint64_t H = 0xCBF29CE484222325ULL;
  PrefixHash[0] = H;
  for (size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Input[I]);
    H *= 0x100000001B3ULL;
    PrefixHash[I + 1] = H;
  }
  // Longest cached prefix wins: every skipped byte is execution we do
  // not repeat. L == N re-enters a whole earlier run of this exact input
  // at its suspension point.
  PrefixResumeCache::Entry *Hit = nullptr;
  ++Stats.Probes;
  for (size_t L = N; L >= 1; --L) {
    if (!Cache.hasLength(L))
      continue;
    if ((Hit = Cache.lookup(PrefixHash[L], Input.substr(0, L))))
      break;
  }
  // The context is placement-constructed at the same address every run:
  // subject frames on the fiber hold references to it, and a restored
  // frame must find the live context where the checkpointed one was.
  new (CtxMem) ExecutionContext(Input, InstrumentationMode::Full,
                                std::move(InOut));
  Ctx = reinterpret_cast<ExecutionContext *>(CtxMem);
  Ctx->setPastEndHook(this);
  MintedThisRun = false;
  ExitCode = 1;
  if (Hit) {
    ++Stats.Hits;
    Stats.BytesSkipped += Hit->Prefix.size();
    Ctx->restoreFrom(Hit->Exec, Input);
    F.resumeAt(Hit->Stack);
  } else {
    ++Stats.ColdRuns;
    F.run(&PrefixResumeEngine::fiberMain, this);
  }
  assert(F.finished() && "subject yielded instead of returning");
  Ctx->setExitCode(ExitCode);
  InOut = Ctx->takeResult();
  Ctx->~ExecutionContext();
  Ctx = nullptr;
}

bool PrefixResumeEngine::onPastEnd(ExecutionContext &C) {
  // One checkpoint per run, at the first past-end read: that is where
  // every extension of the current input diverges from it, and the state
  // there depends only on the in-bounds bytes all extensions share.
  if (MintedThisRun)
    return false;
  MintedThisRun = true;
  std::string_view In = C.input();
  if (In.empty())
    return false; // a zero-length prefix skips nothing
  PrefixResumeCache::Entry *E =
      Cache.insertSlot(PrefixHash[In.size()], In, &Stats.Evicted);
  if (!E)
    return false;
  C.snapshotTo(E->Exec);
  E->Stack.reset();
  if (Fiber::checkpoint(E->Stack)) {
    // A later execute() restored this very point with a longer input.
    // E must not be touched here — it may have been evicted since the
    // capture; the caller (peekChar) re-checks its bounds.
    return true;
  }
  ++Stats.Minted;
  return false;
}
