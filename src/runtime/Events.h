//===- runtime/Events.h - Instrumentation event records ---------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event records the instrumented runtime produces for the fuzzer:
/// comparisons of tainted values (Section 4: "Any comparisons of tainted
/// values (mostly character and string comparisons) are tracked") and
/// accesses past the end of the input (Section 2: "The EOF is detected as
/// any operation that tries to access past the end of a given argument").
///
/// Event byte payloads (the expected operand and the concrete compared
/// bytes) are not owned by the event: they live in a per-RunResult char
/// arena and events hold offset+length slices into it. Recording a
/// comparison therefore appends to one recycled buffer instead of
/// constructing two std::strings per event — the dominant allocation in
/// Full-mode execution. Resolve slices with RunResult::expected(E) /
/// RunResult::actual(E).
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_RUNTIME_EVENTS_H
#define PFUZZ_RUNTIME_EVENTS_H

#include "taint/Taint.h"

#include <cstdint>

namespace pfuzz {

/// Classifies a tracked comparison by the shape of its expected operand.
enum class CompareKind {
  /// Equality against a single character (`c == '('`).
  CharEq,
  /// Membership in an inclusive character range (`'0' <= c && c <= '9'`).
  CharRange,
  /// Membership in an explicit character set (`strchr("+-*/", c)`).
  CharSet,
  /// Full string equality (`strcmp(tok, "while") == 0`).
  StrEq,
};

/// A byte range inside the owning RunResult's event-character arena.
/// Meaningless without the RunResult it was recorded into.
struct EventSlice {
  uint32_t Offset = 0;
  uint32_t Length = 0;
};

/// One tracked comparison between a tainted value and an expected operand.
struct ComparisonEvent {
  /// Input indices the compared value derives from. Empty when the subject
  /// compared a value whose taint was lost (implicit flow).
  TaintSet Taint;

  CompareKind Kind = CompareKind::CharEq;

  /// The expected operand, as an arena slice. CharEq: one char. CharRange:
  /// exactly two chars {lo, hi}. CharSet: the member characters. StrEq:
  /// the full string. Resolve with RunResult::expected(E).
  EventSlice Expected;

  /// The concrete bytes of the compared value at comparison time, as an
  /// arena slice. Resolve with RunResult::actual(E).
  EventSlice Actual;

  /// Whether the comparison succeeded.
  bool Matched = false;

  /// True when the compared value was the EOF sentinel.
  bool OnEof = false;

  /// True when the comparison reaches the input only through an implicit
  /// flow (ctype table lookups, control-dependent copies). The paper's
  /// prototype does not track implicit flows (Section 5.2), so pFuzzer
  /// ignores these events; the symbolic-execution baseline, which does not
  /// rely on dynamic taint, can still use them.
  bool Implicit = false;

  /// Call-stack depth at the time of the comparison (Algorithm 1 uses the
  /// average stack size between the last two comparisons).
  uint32_t StackDepth = 0;

  /// Length of the branch trace when the comparison executed; lets the
  /// fuzzer attribute coverage "up to the first comparison of the last
  /// character" (Section 3.1).
  uint32_t TracePosition = 0;
};

/// An attempted input access at or past the end of the input.
struct EofEvent {
  /// The out-of-bounds index that was accessed.
  uint32_t AccessIndex = 0;
};

} // namespace pfuzz

#endif // PFUZZ_RUNTIME_EVENTS_H
