//===- runtime/ExecutionContext.cpp - Instrumented execution --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionContext.h"
#include "runtime/Interning.h"

#include <algorithm>
#include <cassert>

using namespace pfuzz;

void RunResult::coveredBranchesUpTo(uint32_t End,
                                    std::vector<uint32_t> &Out) const {
  uint32_t Limit = std::min<uint32_t>(End, BranchTrace.size());
  Out.clear();
  if (++SeenPass == 0) {
    // Pass counter wrapped: stale stamps could alias, so reset them once
    // every 2^32 passes.
    std::fill(SeenStamp.begin(), SeenStamp.end(), 0u);
    SeenPass = 1;
  }
  for (uint32_t I = 0; I != Limit; ++I) {
    uint32_t Entry = BranchTrace[I];
    if (Entry >= SeenStamp.size())
      SeenStamp.resize(Entry + 1, 0u);
    if (SeenStamp[Entry] != SeenPass) {
      SeenStamp[Entry] = SeenPass;
      Out.push_back(Entry);
    }
  }
  // Only the distinct entries get sorted — output order must stay
  // ascending because path hashes are computed over it.
  std::sort(Out.begin(), Out.end());
}

void RunResult::clear() {
  ExitCode = 1;
  Comparisons.clear();
  EofAccesses.clear();
  BranchTrace.clear();
  CallTrace.clear();
  FunctionNames.clear();
  EventChars.clear();
  // Invalidate the interned-id remap in O(1); the stamp vectors keep
  // their storage across recycled runs.
  if (++FuncPass == 0) {
    std::fill(FuncStamp.begin(), FuncStamp.end(), 0u);
    FuncPass = 1;
  }
}

void RunResult::assignFrom(const RunResult &Other) {
  ExitCode = Other.ExitCode;
  // Member-wise vector copy assignment reuses existing capacity; an
  // evicted cache entry recycled through here stops allocating once its
  // buffers have grown to the working-set size.
  Comparisons = Other.Comparisons;
  EofAccesses = Other.EofAccesses;
  BranchTrace = Other.BranchTrace;
  CallTrace = Other.CallTrace;
  FunctionNames = Other.FunctionNames;
  EventChars.assign(Other.EventChars);
}

void RunResult::assignPrefixFrom(const RunResult &Full, const RunMark &At) {
  // The marked moment predates the run's completion, so its exit code is
  // the not-yet-finished default regardless of how the run ended.
  ExitCode = 1;
  Comparisons.assign(Full.Comparisons.begin(),
                     Full.Comparisons.begin() + At.NumComparisons);
  EofAccesses.assign(Full.EofAccesses.begin(),
                     Full.EofAccesses.begin() + At.NumEofAccesses);
  BranchTrace.assign(Full.BranchTrace.begin(),
                     Full.BranchTrace.begin() + At.NumBranches);
  CallTrace.assign(Full.CallTrace.begin(),
                   Full.CallTrace.begin() + At.NumCalls);
  FunctionNames.assign(Full.FunctionNames.begin(),
                       Full.FunctionNames.begin() + At.NumNames);
  EventChars.assign(Full.EventChars.data(), At.NumEventChars);
}

TChar ExecutionContext::nextChar() {
  TChar C = peekChar(0);
  // Advance even past the end so repeated EOF reads access fresh indices,
  // matching a C program walking a pointer past the buffer.
  ++Cursor;
  return C;
}

TChar ExecutionContext::peekChar(uint32_t Lookahead) {
  for (;;) {
    uint64_t Index = static_cast<uint64_t>(Cursor) + Lookahead;
    if (Index >= Input.size()) {
      // Give the resumption engine its suspension point. A true return
      // means the input may have grown underneath us (this very read was
      // re-entered from a checkpoint with a longer input), so the bounds
      // check repeats; the hook stops reporting growth once it has taken
      // its one checkpoint for the current input.
      if (Hook && Hook->onPastEnd(*this))
        continue;
      if (Mode == InstrumentationMode::Full) {
        // Re-reads at the same position collapse into one EofEvent: a
        // parser retrying its lookahead at one cursor wants one character,
        // and counting every attempt would inflate the "wants more input"
        // signal the search extends on.
        uint32_t At = static_cast<uint32_t>(Index);
        if (Result.EofAccesses.empty() ||
            Result.EofAccesses.back().AccessIndex != At)
          Result.EofAccesses.push_back({At});
      }
      // The EOF sentinel still carries the accessed index as taint so that
      // comparisons against it can be attributed to a position.
      return TChar(EofChar, TaintSet::forIndex(static_cast<uint32_t>(Index)));
    }
    // Mid-run suspension point for checkpoint ladders: an in-bounds read
    // crossing the rung limit suspends before the byte is served. A true
    // return again means this read was re-entered with a different
    // (longer) input, so both checks above repeat against it.
    if (Index >= RungLimit && Hook &&
        Hook->onRungReached(*this, static_cast<uint32_t>(Index)))
      continue;
    return TChar(static_cast<unsigned char>(Input[Index]),
                 TaintSet::forIndex(static_cast<uint32_t>(Index)));
  }
}

void ExecutionContext::restoreFrom(const RunResult &Full, const RunMark &At,
                                   std::string_view NewInput) {
  Input = NewInput;
  Cursor = At.Cursor;
  StackDepth = At.StackDepth;
  MaxStackDepth = At.MaxStackDepth;
  Result.assignPrefixFrom(Full, At);
  // assignFrom copies contents, not scratch: rebuild the interned-id
  // remap so functions re-entered by the continuation find the ids the
  // restored FunctionNames already assigned instead of re-appending.
  // The views' data() are the registered __func__ literals, the intern
  // table's very keys.
  if (++Result.FuncPass == 0) {
    std::fill(Result.FuncStamp.begin(), Result.FuncStamp.end(), 0u);
    Result.FuncPass = 1;
  }
  for (size_t I = 0; I != Result.FunctionNames.size(); ++I) {
    uint32_t Global = internFunctionName(Result.FunctionNames[I].data());
    if (Global >= Result.FuncStamp.size()) {
      Result.FuncStamp.resize(Global + 1, 0u);
      Result.FuncId.resize(Global + 1, 0);
    }
    Result.FuncStamp[Global] = Result.FuncPass;
    Result.FuncId[Global] = static_cast<int32_t>(I);
  }
}

void ExecutionContext::ungetChar() {
  assert(Cursor > 0 && "ungetChar at start of input");
  --Cursor;
}

EventSlice ExecutionContext::internEventChars(std::string_view Bytes) {
  EventSlice Slice{static_cast<uint32_t>(Result.EventChars.size()),
                   static_cast<uint32_t>(Bytes.size())};
  Result.EventChars.append(Bytes);
  return Slice;
}

void ExecutionContext::recordComparison(const TChar &C, CompareKind Kind,
                                        std::string_view Expected,
                                        bool Matched, bool Implicit) {
  if (Mode != InstrumentationMode::Full)
    return;
  ComparisonEvent Event;
  Event.Taint = C.taint();
  Event.Kind = Kind;
  Event.Expected = internEventChars(Expected);
  if (!C.isEof()) {
    char Ch = C.ch();
    Event.Actual = internEventChars(std::string_view(&Ch, 1));
  }
  Event.Matched = Matched;
  Event.OnEof = C.isEof();
  Event.Implicit = Implicit;
  Event.StackDepth = StackDepth;
  Event.TracePosition = static_cast<uint32_t>(Result.BranchTrace.size());
  Result.Comparisons.push_back(std::move(Event));
}

/// Comparisons operate on unsigned byte values, like a C parser comparing
/// `unsigned char` input bytes.
static unsigned byteOf(char C) { return static_cast<unsigned char>(C); }

bool ExecutionContext::cmpEq(const TChar &C, char Expected, bool Implicit) {
  bool Matched = !C.isEof() && byteOf(C.ch()) == byteOf(Expected);
  recordComparison(C, CompareKind::CharEq, std::string_view(&Expected, 1),
                   Matched, Implicit);
  return Matched;
}

bool ExecutionContext::cmpRange(const TChar &C, char Lo, char Hi,
                                bool Implicit) {
  // An inverted range (Lo > Hi) is recorded as-is: the comparison is
  // naturally unsatisfiable, and the fuzzer's expansion of the event
  // guards against the inversion rather than the runtime aborting on a
  // subject's buggy bounds.
  bool Matched = !C.isEof() && byteOf(C.ch()) >= byteOf(Lo) &&
                 byteOf(C.ch()) <= byteOf(Hi);
  char Bounds[2] = {Lo, Hi};
  recordComparison(C, CompareKind::CharRange, std::string_view(Bounds, 2),
                   Matched, Implicit);
  return Matched;
}

bool ExecutionContext::cmpSet(const TChar &C, std::string_view Set,
                              bool Implicit) {
  bool Matched = !C.isEof() && Set.find(C.ch()) != std::string_view::npos;
  recordComparison(C, CompareKind::CharSet, Set, Matched, Implicit);
  return Matched;
}

bool ExecutionContext::cmpStr(const TString &S, std::string_view Expected) {
  bool Matched = S.view() == Expected;
  if (Mode == InstrumentationMode::Full) {
    ComparisonEvent Event;
    Event.Taint = S.taint();
    Event.Kind = CompareKind::StrEq;
    Event.Expected = internEventChars(Expected);
    Event.Actual = internEventChars(S.view());
    Event.Matched = Matched;
    Event.OnEof = false;
    Event.StackDepth = StackDepth;
    Event.TracePosition = static_cast<uint32_t>(Result.BranchTrace.size());
    Result.Comparisons.push_back(std::move(Event));
  }
  return Matched;
}

void ExecutionContext::enterFunction(const char *Name) {
  uint32_t Global = internFunctionName(Name);
  if (Global >= Result.FuncStamp.size()) {
    Result.FuncStamp.resize(Global + 1, 0u);
    Result.FuncId.resize(Global + 1, 0);
  }
  if (Result.FuncStamp[Global] != Result.FuncPass) {
    Result.FuncStamp[Global] = Result.FuncPass;
    Result.FuncId[Global] = static_cast<int32_t>(Result.FunctionNames.size());
    Result.FunctionNames.push_back(Name);
  }
  Result.CallTrace.push_back({Result.FuncId[Global], Cursor});
}

void ExecutionContext::exitFunction() {
  Result.CallTrace.push_back({-1, Cursor});
}

bool ExecutionContext::recordBranch(uint32_t SiteId, bool Taken) {
  if (Mode != InstrumentationMode::Off)
    Result.BranchTrace.push_back((SiteId << 1) | (Taken ? 1u : 0u));
  return Taken;
}
