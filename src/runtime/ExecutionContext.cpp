//===- runtime/ExecutionContext.cpp - Instrumented execution --------------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionContext.h"

#include <algorithm>
#include <cassert>

using namespace pfuzz;

void RunResult::coveredBranchesUpTo(uint32_t End,
                                    std::vector<uint32_t> &Out) const {
  uint32_t Limit = std::min<uint32_t>(End, BranchTrace.size());
  Out.assign(BranchTrace.begin(), BranchTrace.begin() + Limit);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
}

void RunResult::clear() {
  ExitCode = 1;
  Comparisons.clear();
  EofAccesses.clear();
  BranchTrace.clear();
  CallTrace.clear();
  FunctionNames.clear();
}

TChar ExecutionContext::nextChar() {
  TChar C = peekChar(0);
  // Advance even past the end so repeated EOF reads access fresh indices,
  // matching a C program walking a pointer past the buffer.
  ++Cursor;
  return C;
}

TChar ExecutionContext::peekChar(uint32_t Lookahead) {
  uint64_t Index = static_cast<uint64_t>(Cursor) + Lookahead;
  if (Index >= Input.size()) {
    if (Mode == InstrumentationMode::Full)
      Result.EofAccesses.push_back({static_cast<uint32_t>(Index)});
    // The EOF sentinel still carries the accessed index as taint so that
    // comparisons against it can be attributed to a position.
    return TChar(EofChar, TaintSet::forIndex(static_cast<uint32_t>(Index)));
  }
  return TChar(static_cast<unsigned char>(Input[Index]),
               TaintSet::forIndex(static_cast<uint32_t>(Index)));
}

void ExecutionContext::ungetChar() {
  assert(Cursor > 0 && "ungetChar at start of input");
  --Cursor;
}

void ExecutionContext::recordComparison(const TChar &C, CompareKind Kind,
                                        std::string Expected, bool Matched,
                                        bool Implicit) {
  if (Mode != InstrumentationMode::Full)
    return;
  ComparisonEvent Event;
  Event.Taint = C.taint();
  Event.Kind = Kind;
  Event.Expected = std::move(Expected);
  if (!C.isEof())
    Event.Actual.push_back(C.ch());
  Event.Matched = Matched;
  Event.OnEof = C.isEof();
  Event.Implicit = Implicit;
  Event.StackDepth = StackDepth;
  Event.TracePosition = static_cast<uint32_t>(Result.BranchTrace.size());
  Result.Comparisons.push_back(std::move(Event));
}

/// Comparisons operate on unsigned byte values, like a C parser comparing
/// `unsigned char` input bytes.
static unsigned byteOf(char C) { return static_cast<unsigned char>(C); }

bool ExecutionContext::cmpEq(const TChar &C, char Expected, bool Implicit) {
  bool Matched = !C.isEof() && byteOf(C.ch()) == byteOf(Expected);
  recordComparison(C, CompareKind::CharEq, std::string(1, Expected), Matched,
                   Implicit);
  return Matched;
}

bool ExecutionContext::cmpRange(const TChar &C, char Lo, char Hi,
                                bool Implicit) {
  assert(byteOf(Lo) <= byteOf(Hi) && "inverted comparison range");
  bool Matched = !C.isEof() && byteOf(C.ch()) >= byteOf(Lo) &&
                 byteOf(C.ch()) <= byteOf(Hi);
  std::string Expected;
  Expected.push_back(Lo);
  Expected.push_back(Hi);
  recordComparison(C, CompareKind::CharRange, std::move(Expected), Matched,
                   Implicit);
  return Matched;
}

bool ExecutionContext::cmpSet(const TChar &C, std::string_view Set,
                              bool Implicit) {
  bool Matched = !C.isEof() && Set.find(C.ch()) != std::string_view::npos;
  recordComparison(C, CompareKind::CharSet, std::string(Set), Matched,
                   Implicit);
  return Matched;
}

bool ExecutionContext::cmpStr(const TString &S, std::string_view Expected) {
  bool Matched = S.view() == Expected;
  if (Mode == InstrumentationMode::Full) {
    ComparisonEvent Event;
    Event.Taint = S.taint();
    Event.Kind = CompareKind::StrEq;
    Event.Expected = std::string(Expected);
    Event.Actual = S.str();
    Event.Matched = Matched;
    Event.OnEof = false;
    Event.StackDepth = StackDepth;
    Event.TracePosition = static_cast<uint32_t>(Result.BranchTrace.size());
    Result.Comparisons.push_back(std::move(Event));
  }
  return Matched;
}

void ExecutionContext::enterFunction(const char *Name) {
  int32_t NextId = static_cast<int32_t>(Result.FunctionNames.size());
  auto [It, Inserted] =
      FunctionIds.try_emplace(static_cast<const void *>(Name), NextId);
  if (Inserted)
    Result.FunctionNames.push_back(Name);
  Result.CallTrace.push_back({It->second, Cursor});
}

void ExecutionContext::exitFunction() {
  Result.CallTrace.push_back({-1, Cursor});
}

bool ExecutionContext::recordBranch(uint32_t SiteId, bool Taken) {
  if (Mode != InstrumentationMode::Off)
    Result.BranchTrace.push_back((SiteId << 1) | (Taken ? 1u : 0u));
  return Taken;
}
