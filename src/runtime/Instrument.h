//===- runtime/Instrument.h - Subject instrumentation macros ----*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macros that play the role of the paper's LLVM instrumentation pass.
/// A subject translation unit brackets its code with
///
/// \code
///   PF_INSTRUMENT_BEGIN()
///   ...parser code using PF_BR / PF_IF_EQ / ... / PF_FUNC...
///   PF_INSTRUMENT_END(NumBranchSites)
/// \endcode
///
/// Each macro use is one static *branch site* with a stable, dense id
/// (derived from __COUNTER__, exactly like a compile-time pass numbering
/// conditional branches). PF_INSTRUMENT_END materializes the total site
/// count, giving the gcov-style denominator for branch coverage.
///
/// The compare-and-branch macros both record the tracked comparison (taint,
/// operands) and the branch outcome — mirroring how an instrumented `if
/// (c == '(')` produces a cmp instruction plus a conditional branch.
///
/// Restrictions: one subject per translation unit (the counter space is
/// per-TU), and every PF_* use is one site, so keep them out of headers.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_RUNTIME_INSTRUMENT_H
#define PFUZZ_RUNTIME_INSTRUMENT_H

#include "runtime/ExecutionContext.h"

/// Opens the instrumented region of a subject translation unit.
#define PF_INSTRUMENT_BEGIN()                                                  \
  namespace {                                                                  \
  constexpr int PfCounterBase = __COUNTER__;                                   \
  }

/// Closes the instrumented region and defines `constexpr uint32_t NAME`
/// holding the number of branch sites in this translation unit.
#define PF_INSTRUMENT_END(NAME)                                                \
  namespace {                                                                  \
  constexpr uint32_t NAME = static_cast<uint32_t>(__COUNTER__) -               \
                            static_cast<uint32_t>(PfCounterBase) - 1;          \
  }

/// The id of the branch site at this textual position (one per expansion).
#define PF_SITE_ID                                                             \
  (static_cast<uint32_t>(__COUNTER__) - static_cast<uint32_t>(PfCounterBase) - \
   1)

/// Records a plain conditional branch; evaluates to the condition.
#define PF_BR(CTX, COND) ((CTX).recordBranch(PF_SITE_ID, (COND)))

/// Tracked `c == 'x'` comparison plus its conditional branch.
#define PF_IF_EQ(CTX, C, EXPECTED)                                             \
  ((CTX).recordBranch(PF_SITE_ID, (CTX).cmpEq((C), (EXPECTED))))

/// Tracked range membership (`lo <= c <= hi`) plus its branch.
#define PF_IF_RANGE(CTX, C, LO, HI)                                            \
  ((CTX).recordBranch(PF_SITE_ID, (CTX).cmpRange((C), (LO), (HI))))

/// Tracked set membership (strchr-style) plus its branch.
#define PF_IF_SET(CTX, C, SET)                                                 \
  ((CTX).recordBranch(PF_SITE_ID, (CTX).cmpSet((C), (SET))))

/// Implicit-flow variants: the comparison still executes (and a symbolic
/// executor would see it), but the paper's taint-based extraction cannot —
/// see ComparisonEvent::Implicit. Used for ctype-table lookups and values
/// derived through control dependences.
#define PF_IF_EQ_IMPL(CTX, C, EXPECTED)                                        \
  ((CTX).recordBranch(PF_SITE_ID,                                              \
                      (CTX).cmpEq((C), (EXPECTED), /*Implicit=*/true)))

#define PF_IF_RANGE_IMPL(CTX, C, LO, HI)                                       \
  ((CTX).recordBranch(PF_SITE_ID,                                              \
                      (CTX).cmpRange((C), (LO), (HI), /*Implicit=*/true)))

#define PF_IF_SET_IMPL(CTX, C, SET)                                            \
  ((CTX).recordBranch(PF_SITE_ID,                                              \
                      (CTX).cmpSet((C), (SET), /*Implicit=*/true)))

/// Tracked wrapped-strcmp equality plus its branch.
#define PF_IF_STR(CTX, S, EXPECTED)                                            \
  ((CTX).recordBranch(PF_SITE_ID, (CTX).cmpStr((S), (EXPECTED))))

/// Function-entry instrumentation: call-stack depth tracking plus the
/// function-call trace (Section 4: "the sequence of function calls
/// together with current stack contents"). The enclosing function's name
/// identifies the activation for derivation-tree mining.
#define PF_FUNC(CTX)                                                           \
  ::pfuzz::ExecutionContext::FunctionScope PfFunctionScope(CTX, __func__)

#endif // PFUZZ_RUNTIME_INSTRUMENT_H
