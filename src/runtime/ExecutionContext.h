//===- runtime/ExecutionContext.h - Instrumented execution ------*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionContext is the instrumented-execution substrate: it plays the
/// role of the paper's LLVM instrumentation pass plus runtime (Section 4).
/// Subjects read input through it, route every input-derived comparison
/// through the cmp* primitives, and record branch outcomes through
/// recordBranch (via the macros in runtime/Instrument.h). After a run the
/// fuzzer inspects the collected RunResult.
///
/// The execution hot path is allocation-free in steady state: event byte
/// payloads go into a recycled per-RunResult char arena, the input is
/// referenced (not copied), and function names resolve through a
/// process-wide intern table plus epoch-stamped per-run remap scratch.
///
/// Thread-safety contract: concurrent executions on distinct
/// ExecutionContexts are safe. All mutable state — cursor, stack depth,
/// the RunResult being recorded — lives in the context itself; the only
/// process-wide state an execution touches is the function-name intern
/// table, which is lock-free for registered names (see
/// runtime/Interning.h). Subjects are pure functions of their input with
/// no globals, so an execution's RunResult depends only on (Input, Mode),
/// never on what other threads run concurrently. The speculative
/// prefetcher (core/PFuzzer.cpp) relies on exactly this: a RunResult
/// produced on a worker thread is byte-for-byte the result the
/// sequential loop would have recorded itself.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_RUNTIME_EXECUTIONCONTEXT_H
#define PFUZZ_RUNTIME_EXECUTIONCONTEXT_H

#include "runtime/Events.h"
#include "taint/TaintedValue.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pfuzz {

/// How much the runtime records. Off gives an uninstrumented "twin" used to
/// measure instrumentation overhead (the paper reports a ~100x slowdown);
/// CoverageOnly is what an AFL-style fuzzer consumes.
enum class InstrumentationMode {
  Off,
  CoverageOnly,
  Full,
};

/// One entry of the function-call trace: an activation entering or
/// leaving, with the input cursor at that moment. The grammar miner
/// (src/mining) rebuilds derivation trees from this.
struct CallEvent {
  /// Index into RunResult::FunctionNames, or -1 for a function exit.
  int32_t NameId = -1;
  /// Input cursor position when the event fired.
  uint32_t Cursor = 0;
};

/// Everything one instrumented execution produced.
struct RunResult {
  /// Subject exit code; 0 means the input was accepted as valid.
  int ExitCode = 1;

  /// Comparisons of tainted values, in execution order (Full mode only).
  std::vector<ComparisonEvent> Comparisons;

  /// Accesses past the end of the input (Full mode only).
  std::vector<EofEvent> EofAccesses;

  /// Branch trace: each entry is (SiteId << 1) | TakenBit, in execution
  /// order (CoverageOnly and Full).
  std::vector<uint32_t> BranchTrace;

  /// Function enter/exit events in execution order (Full mode only);
  /// Section 4: "the sequence of function calls together with current
  /// stack contents".
  std::vector<CallEvent> CallTrace;

  /// Function names referenced by CallTrace, in order of first appearance
  /// in this run. The views point at the subjects' __func__ literals,
  /// which live for the whole process — safe to copy between RunResults.
  std::vector<std::string_view> FunctionNames;

  /// Byte arena backing every ComparisonEvent's Expected/Actual slice.
  std::string EventChars;

  /// Resolves a comparison's expected operand against this result's arena.
  std::string_view expected(const ComparisonEvent &E) const {
    return std::string_view(EventChars).substr(E.Expected.Offset,
                                               E.Expected.Length);
  }

  /// Resolves a comparison's concrete compared bytes.
  std::string_view actual(const ComparisonEvent &E) const {
    return std::string_view(EventChars).substr(E.Actual.Offset,
                                               E.Actual.Length);
  }

  /// Returns true if the program tried to read past the end of input.
  bool hitEof() const { return !EofAccesses.empty(); }

  /// Fills \p Out with the distinct branch-trace entries in
  /// Trace[0..End), sorted ascending. End is clamped to the trace
  /// length. \p Out is clear()ed, not reallocated — fuzzers pass a
  /// long-lived scratch buffer so the per-execution hot path performs no
  /// heap allocation. Dedup is O(trace) via an epoch-stamped per-site
  /// seen array; only the unique entries are sorted.
  void coveredBranchesUpTo(uint32_t End, std::vector<uint32_t> &Out) const;

  /// Allocating convenience form of the above.
  std::vector<uint32_t> coveredBranchesUpTo(uint32_t End) const {
    std::vector<uint32_t> Out;
    coveredBranchesUpTo(End, Out);
    return Out;
  }

  /// Fills \p Out with all distinct branch-trace entries (scratch-buffer
  /// form).
  void coveredBranches(std::vector<uint32_t> &Out) const {
    coveredBranchesUpTo(static_cast<uint32_t>(BranchTrace.size()), Out);
  }

  /// Returns all distinct branch-trace entries.
  std::vector<uint32_t> coveredBranches() const {
    return coveredBranchesUpTo(static_cast<uint32_t>(BranchTrace.size()));
  }

  /// Empties every event container while keeping their heap buffers, so
  /// a recycled RunResult re-records a fresh execution without
  /// reallocating BranchTrace/Comparisons/CallTrace/EventChars.
  void clear();

  /// Deep-copies \p Other's recorded contents into this result, reusing
  /// this result's existing buffer capacities (the run cache recycles
  /// evicted entries through this). Scratch state is not copied.
  void assignFrom(const RunResult &Other);

  /// Deep-copies the first-\p At slice of \p Full's event containers into
  /// this result — exactly the state \p Full's run had recorded at the
  /// moment ExecutionContext::markTo captured \p At. Valid because
  /// recording is strictly append-only (see markTo); ExitCode is reset to
  /// the not-yet-finished default, never copied from the completed run.
  void assignPrefixFrom(const RunResult &Full, const struct RunMark &At);

private:
  friend class ExecutionContext;

  // --- Recycled scratch, not part of the recorded result. ---

  /// Epoch-stamped seen array for coveredBranchesUpTo, indexed by branch
  /// trace entry. An entry is "seen this pass" iff SeenStamp[E] ==
  /// SeenPass; bumping SeenPass resets the whole array in O(1).
  mutable std::vector<uint32_t> SeenStamp;
  mutable uint32_t SeenPass = 0;

  /// Epoch-stamped remap from process-wide interned function ids to this
  /// run's dense FunctionNames indices. Valid iff FuncStamp[G] ==
  /// FuncPass; clear() bumps FuncPass instead of wiping the vectors.
  std::vector<uint32_t> FuncStamp;
  std::vector<int32_t> FuncId;
  uint32_t FuncPass = 1;
};

class ExecutionContext;

/// Callback with the engine's two suspension points: a read past the end
/// of the input (the exact moment the search would extend the candidate)
/// and an in-bounds read crossing the context's rung limit (where the
/// resumption engine mints mid-run "ladder" checkpoints). Both fire
/// *before* the read's effect is recorded, so a checkpoint taken inside
/// the hook captures exactly the state a cold run of any input sharing
/// the observed prefix would reach.
struct PastEndHook {
  /// Fired when an execution attempts to read past the end of its input,
  /// before the EofEvent is recorded. Returns true when the context's
  /// input may have grown underneath the caller (the read re-checks its
  /// bounds), false to proceed to the EOF sentinel.
  virtual bool onPastEnd(ExecutionContext &Ctx) = 0;

  /// Fired when an in-bounds read first touches byte \p Index >= the
  /// context's rung limit (setRungLimit), before the byte is served:
  /// every byte observed so far lies below the limit, so the state here
  /// depends only on Input[0..Index) and is a valid resume point for any
  /// input sharing that prefix. Same return contract as onPastEnd; the
  /// default never suspends.
  virtual bool onRungReached(ExecutionContext &Ctx, uint32_t Index) {
    (void)Ctx;
    (void)Index;
    return false;
  }

protected:
  ~PastEndHook() = default;
};

/// An O(1) watermark of everything an ExecutionContext has recorded up to
/// one point of its run: the cursor and stack-depth counters plus the
/// size of every event container. Because recording is append-only, the
/// completed run's RunResult truncated at these sizes *is* the state at
/// the marked moment — checkpoints store a mark plus a shared pointer to
/// the final result instead of a deep copy (the stack side of the state
/// is a FiberCheckpoint; see runtime/PrefixResumeCache.h).
struct RunMark {
  uint32_t Cursor = 0;
  uint32_t StackDepth = 0;
  uint32_t MaxStackDepth = 0;
  uint32_t NumComparisons = 0;
  uint32_t NumEofAccesses = 0;
  uint32_t NumBranches = 0;
  uint32_t NumCalls = 0;
  uint32_t NumNames = 0;
  uint32_t NumEventChars = 0;
};

/// The per-execution instrumentation state handed to a Subject::run call.
class ExecutionContext {
public:
  explicit ExecutionContext(
      std::string_view Input,
      InstrumentationMode Mode = InstrumentationMode::Full)
      : Input(Input), Mode(Mode) {}

  /// Pooled-execution constructor: adopts \p Recycled as the result
  /// storage, clearing its contents but keeping the vector capacities a
  /// previous run grew. Campaigns executing millions of inputs recycle
  /// one RunResult this way instead of reallocating every trace buffer
  /// per execution (see Subject::execute(Input, Mode, InOut)).
  ExecutionContext(std::string_view Input, InstrumentationMode Mode,
                   RunResult &&Recycled)
      : Input(Input), Mode(Mode), Result(std::move(Recycled)) {
    Result.clear();
  }

  //===--------------------------------------------------------------------===
  // Input access
  //===--------------------------------------------------------------------===

  /// Reads the next character and advances; yields the EOF sentinel (and
  /// records an EofEvent) past the end of input.
  TChar nextChar();

  /// Reads the character \p Lookahead positions ahead without consuming.
  /// Lookahead 0 is the character nextChar would return.
  TChar peekChar(uint32_t Lookahead = 0);

  /// Current read position.
  uint32_t position() const { return Cursor; }

  /// Puts the last consumed character back. At most the entire input can be
  /// rewound; subjects use this for one-character lookahead pushback.
  void ungetChar();

  /// True if the cursor is at or past the end of input. Does NOT count as
  /// an EOF access: the paper detects EOF via attempted reads, and subjects
  /// that call an explicit "are we at the end" predicate (an feof() analog)
  /// would hide the signal the fuzzer needs. Only tinyC/mjs-style trailing
  /// checks use this.
  bool atEnd() const { return Cursor >= Input.size(); }

  /// The input under execution. A view: the context does not copy the
  /// input, the caller keeps it alive for the duration of the run (every
  /// driver already does — queues and corpora own their strings).
  std::string_view input() const { return Input; }

  //===--------------------------------------------------------------------===
  // Tracked comparisons (Full mode records ComparisonEvents)
  //===--------------------------------------------------------------------===

  /// `C == Expected`. Returns the concrete outcome. \p Implicit marks a
  /// comparison that reaches the input only through an implicit flow; see
  /// ComparisonEvent::Implicit.
  bool cmpEq(const TChar &C, char Expected, bool Implicit = false);

  /// `Lo <= C && C <= Hi`.
  bool cmpRange(const TChar &C, char Lo, char Hi, bool Implicit = false);

  /// `strchr(Set, C) != nullptr` (C must be non-EOF to match).
  bool cmpSet(const TChar &C, std::string_view Set, bool Implicit = false);

  /// `strcmp(S, Expected) == 0` — the wrapped-strcmp of Section 4.
  bool cmpStr(const TString &S, std::string_view Expected);

  //===--------------------------------------------------------------------===
  // Coverage and call-stack instrumentation
  //===--------------------------------------------------------------------===

  /// Records branch site \p SiteId with outcome \p Taken; returns Taken so
  /// the macro is usable inside conditions.
  bool recordBranch(uint32_t SiteId, bool Taken);

  /// RAII scope emitted at function entry by PF_FUNC. \p Name is the
  /// enclosing function's __func__ literal; Full mode records a call
  /// trace from it for derivation-tree mining.
  class FunctionScope {
  public:
    FunctionScope(ExecutionContext &Ctx, const char *Name) : Ctx(Ctx) {
      ++Ctx.StackDepth;
      if (Ctx.StackDepth > Ctx.MaxStackDepth)
        Ctx.MaxStackDepth = Ctx.StackDepth;
      if (Ctx.Mode == InstrumentationMode::Full)
        Ctx.enterFunction(Name);
    }
    ~FunctionScope() {
      --Ctx.StackDepth;
      if (Ctx.Mode == InstrumentationMode::Full)
        Ctx.exitFunction();
    }
    FunctionScope(const FunctionScope &) = delete;
    FunctionScope &operator=(const FunctionScope &) = delete;

  private:
    ExecutionContext &Ctx;
  };

  uint32_t stackDepth() const { return StackDepth; }
  uint32_t maxStackDepth() const { return MaxStackDepth; }

  InstrumentationMode mode() const { return Mode; }

  /// Moves the collected result out of the context. The subject's exit
  /// code must be stored with setExitCode before calling this.
  RunResult takeResult() { return std::move(Result); }

  void setExitCode(int Code) { Result.ExitCode = Code; }

  //===--------------------------------------------------------------------===
  // Suspend/resume entry points (prefix-resumption engine)
  //===--------------------------------------------------------------------===

  /// Installs \p H to observe suspension points; null detaches. The hook
  /// is engine-internal — subjects never see it, and a context without
  /// one behaves exactly as before.
  void setPastEndHook(PastEndHook *H) { Hook = H; }

  /// Arms PastEndHook::onRungReached: the next in-bounds read of any byte
  /// at index >= \p Limit fires the hook before the byte is served. The
  /// default (no limit) adds one predictable compare to the read path and
  /// nothing else.
  void setRungLimit(uint64_t Limit) { RungLimit = Limit; }

  static constexpr uint64_t NoRungLimit = ~0ULL;

  /// Captures the recorded-so-far state as an O(1) watermark (see
  /// RunMark). Every recorder in this class only ever appends — any new
  /// instrumentation must preserve that, or marks stop reconstructing
  /// mid-run state.
  void markTo(RunMark &Out) const {
    Out.Cursor = Cursor;
    Out.StackDepth = StackDepth;
    Out.MaxStackDepth = MaxStackDepth;
    Out.NumComparisons = static_cast<uint32_t>(Result.Comparisons.size());
    Out.NumEofAccesses = static_cast<uint32_t>(Result.EofAccesses.size());
    Out.NumBranches = static_cast<uint32_t>(Result.BranchTrace.size());
    Out.NumCalls = static_cast<uint32_t>(Result.CallTrace.size());
    Out.NumNames = static_cast<uint32_t>(Result.FunctionNames.size());
    Out.NumEventChars = static_cast<uint32_t>(Result.EventChars.size());
  }

  /// Restores the state \p Full's run had at mark \p At as this context's
  /// recorded state and swaps the input for \p NewInput, which must share
  /// the marked run's observed prefix — the continuation then records
  /// exactly what a cold run of \p NewInput would from that point on.
  /// Rebuilds the interned-name remap scratch so re-entered functions
  /// resolve to their restored FunctionNames ids.
  void restoreFrom(const RunResult &Full, const RunMark &At,
                   std::string_view NewInput);

private:
  /// Appends \p Bytes to the result's event arena and returns its slice.
  EventSlice internEventChars(std::string_view Bytes);

  void recordComparison(const TChar &C, CompareKind Kind,
                        std::string_view Expected, bool Matched,
                        bool Implicit);
  void enterFunction(const char *Name);
  void exitFunction();

  std::string_view Input;
  InstrumentationMode Mode;
  uint32_t Cursor = 0;
  uint32_t StackDepth = 0;
  uint32_t MaxStackDepth = 0;
  RunResult Result;
  PastEndHook *Hook = nullptr;
  /// First in-bounds index whose read fires onRungReached.
  uint64_t RungLimit = NoRungLimit;
};

} // namespace pfuzz

#endif // PFUZZ_RUNTIME_EXECUTIONCONTEXT_H
