//===- runtime/Interning.cpp - Process-wide function-name interning -------===//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interning.h"

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace pfuzz;

namespace {

/// 4096 slots for at most a few hundred instrumented functions: the table
/// stays sparse enough that probes terminate after a step or two, and
/// never needs to grow (growing would invalidate concurrent readers).
constexpr size_t TableBits = 12;
constexpr size_t TableSize = size_t(1) << TableBits;
constexpr size_t TableMask = TableSize - 1;

struct Slot {
  /// The interned literal. Written with release order *after* Id, so a
  /// reader that observes Key non-null also observes the matching Id.
  std::atomic<const char *> Key{nullptr};
  uint32_t Id = 0;
};

Slot Table[TableSize];
std::mutex RegisterMutex;
uint32_t NextId = 0; // guarded by RegisterMutex

size_t hashPointer(const char *P) {
  // Literals are at least word-aligned; mix the address bits well enough
  // that nearby literals don't chain.
  auto V = reinterpret_cast<uintptr_t>(P);
  return static_cast<size_t>((V >> 3) * 0x9E3779B97F4A7C15ull) >>
         (64 - TableBits);
}

} // namespace

uint32_t pfuzz::internFunctionName(const char *Name) {
  size_t H = hashPointer(Name) & TableMask;
  // Lock-free fast path: keys are insert-only, so a probe chain observed
  // without the lock is a stable prefix of the chain under the lock.
  for (size_t Probe = H;; Probe = (Probe + 1) & TableMask) {
    const char *K = Table[Probe].Key.load(std::memory_order_acquire);
    if (K == Name)
      return Table[Probe].Id;
    if (K == nullptr)
      break;
  }
  std::lock_guard<std::mutex> Lock(RegisterMutex);
  for (size_t Probe = H;; Probe = (Probe + 1) & TableMask) {
    const char *K = Table[Probe].Key.load(std::memory_order_relaxed);
    if (K == Name)
      return Table[Probe].Id; // another thread registered it first
    if (K == nullptr) {
      // Past half full, probe chains stop being short and, at full, the
      // probe loops above never terminate — a hard capacity limit, so
      // fail loudly in every build mode, not just under assertions.
      if (NextId >= TableSize / 2) {
        std::fprintf(stderr,
                     "pfuzz: fatal: function intern table overflow (%zu "
                     "functions; the %zu-slot table supports at most %zu)\n",
                     static_cast<size_t>(NextId), TableSize, TableSize / 2);
        std::abort();
      }
      uint32_t Id = NextId++;
      Table[Probe].Id = Id;
      Table[Probe].Key.store(Name, std::memory_order_release);
      return Id;
    }
  }
}
