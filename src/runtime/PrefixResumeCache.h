//===- runtime/PrefixResumeCache.h - Prefix-resumption engine ----*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prefix-resumption execution layer. pFuzzer's search grows inputs
/// one character at a time, so nearly every candidate is P + suffix for a
/// prefix P the campaign has already executed — yet a plain run replays P
/// from byte 0, a cost that grows quadratically with input length. This
/// layer runs subjects on a fiber (support/Fiber.h) and, at the first
/// read past end-of-input — the exact EOF event the search extends
/// candidates on — checkpoints the execution *in passing*: the live stack
/// region, the register context and a snapshot of the RunResult so far.
/// The run then continues to completion as if nothing happened, so every
/// execution still yields its full report and minting a checkpoint costs
/// one stack copy, never an extra execution.
///
/// Checkpoints live in PrefixResumeCache, a bounded LRU pool keyed by the
/// FNV-1a hash of the whole input that minted them (for a parser that
/// consumed its input and asked for more, that input *is* the shared
/// prefix). Running a candidate probes its prefixes longest-first; a hit
/// restores the snapshot, memcpys the stack bytes back, and re-enters the
/// suspended read, which now sees the appended suffix — skipping the
/// prefix's re-execution entirely. A miss falls back to a cold run on the
/// fiber (which mints a fresh checkpoint); hash-collision divergence is
/// caught by comparing the stored prefix bytes before any restore.
///
/// Why resumed runs are byte-identical to cold runs: subjects are pure
/// functions of their input reading only through ExecutionContext, and
/// every byte the checkpointed execution observed is in-bounds in any
/// extension (past-end reads suspend *before* recording). The restored
/// continuation therefore records exactly the events a cold run of the
/// longer input records after its own first |P| bytes — same arena
/// slices, same interned-name ids (restoreFrom rebuilds the remap), same
/// branch trace. Reports cannot tell a resume from a cold run at any
/// cache size.
///
/// Threading contract: one engine belongs to one campaign thread — the
/// fiber, the context storage and the cache are all thread-confined.
/// Speculation workers never touch the engine: a suspended run is owned
/// by the sequential loop, and speculated candidates are simply
/// re-executed cold on the worker's own stack (see core/PFuzzer.cpp),
/// which produces the same bytes. Eligibility is per subject
/// (Subject::resumeSafe): only parsers whose frames hold trivially
/// restorable state may be checkpointed.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_RUNTIME_PREFIXRESUMECACHE_H
#define PFUZZ_RUNTIME_PREFIXRESUMECACHE_H

#include "runtime/ExecutionContext.h"
#include "support/Fiber.h"

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

namespace pfuzz {

/// Diagnostic counters of the prefix-resumption engine. Observational
/// only — none feed back into the search, so they may vary across cache
/// sizes while FuzzReports stay byte-identical.
struct ResumeStats {
  /// Probes of the resume cache: one per engine-executed input.
  uint64_t Probes = 0;
  /// Probes that restored a checkpoint instead of running cold.
  uint64_t Hits = 0;
  /// Engine executions that ran the subject from byte 0 (on the fiber).
  uint64_t ColdRuns = 0;
  /// Checkpoints captured at suspension points.
  uint64_t Minted = 0;
  /// Checkpoints evicted by the LRU bound.
  uint64_t Evicted = 0;
  /// Input bytes whose re-execution resumes skipped (sum of hit prefix
  /// lengths) — the engine's whole profit.
  uint64_t BytesSkipped = 0;

  double hitRate() const {
    return Probes == 0 ? 0 : static_cast<double>(Hits) / Probes;
  }

  /// Sums \p Other into this — campaign runners aggregate per-seed
  /// counters into one per-cell total.
  void accumulate(const ResumeStats &Other) {
    Probes += Other.Probes;
    Hits += Other.Hits;
    ColdRuns += Other.ColdRuns;
    Minted += Other.Minted;
    Evicted += Other.Evicted;
    BytesSkipped += Other.BytesSkipped;
  }
};

/// Bounded LRU pool of suspended runs keyed by prefix hash. Entries are
/// node-stored (std::list), never moved or copied: a FiberCheckpoint's
/// register context must stay pinned from capture to the last resume.
class PrefixResumeCache {
public:
  struct Entry {
    uint64_t Hash = 0;
    /// The minting input, verified byte-for-byte on lookup so a hash
    /// collision degrades to a miss, never to a wrong resume.
    std::string Prefix;
    FiberCheckpoint Stack;
    RunSnapshot Exec;
  };

  explicit PrefixResumeCache(size_t MaxEntries) : Max(MaxEntries) {}

  /// Returns the entry for \p Hash if present and its stored prefix is
  /// exactly \p Prefix (else null), marking it most recently used.
  Entry *lookup(uint64_t Hash, std::string_view Prefix);

  /// Returns a pinned entry to (re)mint for \p Hash/\p Prefix, evicting
  /// the least recently used entry when full (counted in *\p EvictedOut).
  /// Null when the cache has no capacity. The returned entry's Stack and
  /// Exec are the caller's to fill.
  Entry *insertSlot(uint64_t Hash, std::string_view Prefix,
                    uint64_t *EvictedOut);

  /// True if any cached prefix has length \p Len — lets the probe loop
  /// skip hash lookups for absent lengths.
  bool hasLength(size_t Len) const {
    return Len < LenCount.size() && LenCount[Len] != 0;
  }

  size_t size() const { return Index.size(); }
  size_t capacity() const { return Max; }

private:
  void countLength(size_t Len, int Delta);

  size_t Max;
  /// Front = most recently used.
  std::list<Entry> Lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  /// How many entries have each prefix length.
  std::vector<uint32_t> LenCount;
};

/// Runs a subject body on a fiber, minting and resuming prefix
/// checkpoints. One engine per campaign; see the file comment for the
/// contracts.
class PrefixResumeEngine final : public PastEndHook {
public:
  /// \p RunBody executes the subject against a context (the core layer
  /// passes Subject::run); \p CacheSize bounds the checkpoint pool.
  /// Inputs shorter than \p MinInput bypass the machinery entirely (no
  /// fiber, no probe, no mint): below the break-even length the fixed
  /// per-run cost — two context switches, a snapshot copy and the
  /// checkpoint memcpy — exceeds what skipping the prefix saves, and a
  /// parser-directed search executes far more short inputs than long
  /// ones. Purely a throughput knob: results are identical at any value.
  PrefixResumeEngine(std::function<int(ExecutionContext &)> RunBody,
                     size_t CacheSize, size_t MinInput = 0);
  ~PrefixResumeEngine();

  /// True when this build and process support checkpointed fibers.
  static bool available() { return PFUZZ_FIBERS_AVAILABLE && Fiber::available(); }

  /// One full instrumented execution of \p Input, resumed from the
  /// longest cached prefix when possible, cold otherwise. \p InOut is
  /// recycled exactly like Subject::execute's pooled form; afterwards it
  /// holds the complete RunResult, byte-identical to a cold execution.
  void execute(std::string_view Input, RunResult &InOut);

  const ResumeStats &stats() const { return Stats; }
  const PrefixResumeCache &cache() const { return Cache; }

private:
  bool onPastEnd(ExecutionContext &Ctx) override;
  static void fiberMain(void *SelfV);

  std::function<int(ExecutionContext &)> RunBody;
  PrefixResumeCache Cache;
  /// Inputs below this length run plainly off the fiber (see ctor).
  size_t MinInput;
  Fiber F;
  ResumeStats Stats;
  /// Rolling FNV-1a: PrefixHash[L] covers Input[0..L) of the input under
  /// execution. Recomputed in one O(n) pass per execute().
  std::vector<uint64_t> PrefixHash;
  /// The context lives in engine-owned storage so its address — captured
  /// by reference into every subject frame on the fiber — is identical
  /// across the runs a checkpoint spans.
  alignas(ExecutionContext) unsigned char CtxMem[sizeof(ExecutionContext)];
  ExecutionContext *Ctx = nullptr;
  int ExitCode = 1;
  /// One checkpoint per run, at the first past-end read.
  bool MintedThisRun = false;
};

} // namespace pfuzz

#endif // PFUZZ_RUNTIME_PREFIXRESUMECACHE_H
