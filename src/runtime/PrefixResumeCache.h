//===- runtime/PrefixResumeCache.h - Prefix-resumption engine ----*- C++ -*-==//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prefix-resumption execution layer. pFuzzer's search grows inputs
/// one character at a time, so nearly every candidate is P + suffix for a
/// prefix P the campaign has already executed — yet a plain run replays P
/// from byte 0, a cost that grows quadratically with input length. This
/// layer runs subjects on a fiber (support/Fiber.h) and checkpoints the
/// execution *in passing* at its suspension points: always at the first
/// read past end-of-input — the exact EOF event the search extends
/// candidates on — and, when a rung stride is configured, at a bounded
/// ladder of in-bounds reads along the run (every read first crossing a
/// stride multiple, up to a per-run rung cap). The run then continues to
/// completion as if nothing happened, so every execution still yields its
/// full report; minting a checkpoint costs one stack copy and an O(1)
/// RunMark, never an extra execution or a deep result copy — all rungs of
/// one run share a single reference-counted copy of its final RunResult,
/// which the mark truncates back to the suspension point on restore
/// (valid because result recording is append-only).
///
/// Checkpoints live in PrefixResumeCache, a bounded LRU pool keyed by the
/// FNV-1a hash of the input prefix observed at the suspension point (for
/// a parser that consumed its input and asked for more, the whole input
/// *is* the shared prefix; for a rung, the bytes below the suspended
/// read). Running a candidate probes its prefixes longest-first, walking
/// a sorted index of the lengths actually cached; a hit restores the
/// marked slice of the stored result, memcpys the stack bytes back, and
/// re-enters the suspended read, which now sees the new bytes — skipping
/// the prefix's re-execution entirely. A miss falls back to a cold run on
/// the fiber (which mints fresh checkpoints); hash-collision divergence
/// is caught by comparing the stored prefix bytes before any restore.
/// Ladders make the probe land near the end of *any* candidate sharing a
/// prefix — in particular substitution candidates spliced below their
/// parent's EOF point, which a single end-of-run checkpoint never covers.
///
/// Why resumed runs are byte-identical to cold runs: subjects are pure
/// functions of their input reading only through ExecutionContext, and
/// every byte the checkpointed execution observed is in-bounds in any
/// extension (past-end reads suspend *before* recording). The restored
/// continuation therefore records exactly the events a cold run of the
/// longer input records after its own first |P| bytes — same arena
/// slices, same interned-name ids (restoreFrom rebuilds the remap), same
/// branch trace. Reports cannot tell a resume from a cold run at any
/// cache size.
///
/// Threading contract: one engine belongs to one campaign thread — the
/// fiber, the context storage and the cache are all thread-confined.
/// Speculation workers never touch the engine: a suspended run is owned
/// by the sequential loop, and speculated candidates are simply
/// re-executed cold on the worker's own stack (see core/PFuzzer.cpp),
/// which produces the same bytes. Eligibility is per subject
/// (Subject::resumeSafe): only parsers whose frames hold trivially
/// restorable state may be checkpointed.
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_RUNTIME_PREFIXRESUMECACHE_H
#define PFUZZ_RUNTIME_PREFIXRESUMECACHE_H

#include "runtime/ExecutionContext.h"
#include "support/Fiber.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pfuzz {

/// Diagnostic counters of the prefix-resumption engine. Observational
/// only — none feed back into the search, so they may vary across cache
/// sizes while FuzzReports stay byte-identical.
struct ResumeStats {
  /// Hit histogram buckets: [0] counts hits on past-end checkpoints,
  /// [k] hits on the k-th stride rung of its minting run; the last
  /// bucket clamps deeper ladders.
  static constexpr size_t RungBuckets = 9;

  /// Probes of the resume cache: one per engine-executed input.
  uint64_t Probes = 0;
  /// Probes that restored a checkpoint instead of running cold.
  uint64_t Hits = 0;
  /// Engine executions that ran the subject from byte 0 (on the fiber).
  uint64_t ColdRuns = 0;
  /// Checkpoints captured at past-end suspension points.
  uint64_t Minted = 0;
  /// Mid-run ladder checkpoints captured at in-bounds stride crossings.
  uint64_t RungsMinted = 0;
  /// Checkpoints evicted by the LRU bound.
  uint64_t Evicted = 0;
  /// Input bytes whose re-execution resumes skipped (sum of hit prefix
  /// lengths) — the engine's whole profit.
  uint64_t BytesSkipped = 0;
  /// Hits bucketed by the hit checkpoint's rung depth (see RungBuckets).
  uint64_t HitsByRung[RungBuckets] = {};

  double hitRate() const {
    return Probes == 0 ? 0 : static_cast<double>(Hits) / Probes;
  }

  /// Average rung depth of the checkpoints hits landed on: 0 when every
  /// hit re-entered a past-end checkpoint, higher when ladder rungs
  /// carry the traffic.
  double avgHitRungDepth() const {
    uint64_t Total = 0, Weighted = 0;
    for (size_t I = 0; I != RungBuckets; ++I) {
      Total += HitsByRung[I];
      Weighted += I * HitsByRung[I];
    }
    return Total == 0 ? 0 : static_cast<double>(Weighted) / Total;
  }

  /// Sums \p Other into this — campaign runners aggregate per-seed
  /// counters into one per-cell total.
  void accumulate(const ResumeStats &Other) {
    Probes += Other.Probes;
    Hits += Other.Hits;
    ColdRuns += Other.ColdRuns;
    Minted += Other.Minted;
    RungsMinted += Other.RungsMinted;
    Evicted += Other.Evicted;
    BytesSkipped += Other.BytesSkipped;
    for (size_t I = 0; I != RungBuckets; ++I)
      HitsByRung[I] += Other.HitsByRung[I];
  }
};

/// Bounded LRU pool of suspended runs keyed by prefix hash. Entries are
/// node-stored (std::list), never moved or copied: a FiberCheckpoint's
/// register context must stay pinned from capture to the last resume.
class PrefixResumeCache {
public:
  struct Entry {
    uint64_t Hash = 0;
    /// Recycle stamp, bumped every time insertSlot (re)assigns this node.
    /// The engine binds shared final results to the entries minted during
    /// a run only if the stamp still matches — an entry evicted and
    /// recycled mid-run silently drops out of the pending batch.
    uint64_t Serial = 0;
    /// The minting prefix, verified byte-for-byte on lookup so a hash
    /// collision degrades to a miss, never to a wrong resume.
    std::string Prefix;
    FiberCheckpoint Stack;
    /// Completed result of the minting run, shared by every rung that
    /// run minted; Mark truncates it back to this entry's suspension
    /// point (RunResult::assignPrefixFrom).
    std::shared_ptr<const RunResult> Final;
    RunMark Mark;
    /// 0 for the past-end checkpoint, k >= 1 for the k-th stride rung of
    /// its minting run.
    uint32_t RungDepth = 0;
  };

  explicit PrefixResumeCache(size_t MaxEntries) : Max(MaxEntries) {}

  /// Returns the entry for \p Hash if present and its stored prefix is
  /// exactly \p Prefix (else null), marking it most recently used.
  Entry *lookup(uint64_t Hash, std::string_view Prefix);

  /// Like lookup, but without promoting the entry or requiring mutable
  /// access — warmth probes (speculation ordering) must not disturb the
  /// eviction order the sequential loop sees.
  const Entry *peek(uint64_t Hash, std::string_view Prefix) const;

  /// Returns a pinned entry to (re)mint for \p Hash/\p Prefix, evicting
  /// the least recently used entry when full (counted in *\p EvictedOut).
  /// Null when the cache has no capacity. The returned entry's Serial is
  /// freshly stamped; its Stack/Final/Mark are the caller's to fill.
  Entry *insertSlot(uint64_t Hash, std::string_view Prefix,
                    uint64_t *EvictedOut);

  /// True if any cached prefix has length \p Len — lets probes skip hash
  /// lookups for absent lengths.
  bool hasLength(size_t Len) const {
    return Len < LenCount.size() && LenCount[Len] != 0;
  }

  /// Largest cached prefix length <= \p Len, or 0 when none: the probe
  /// loop walks the sorted index of lengths actually cached instead of
  /// scanning every length down from the candidate's size.
  size_t longestLengthAtMost(size_t Len) const;

  /// The distinct cached prefix lengths, sorted ascending.
  const std::vector<uint32_t> &lengths() const { return SortedLens; }

  size_t size() const { return Index.size(); }
  size_t capacity() const { return Max; }

private:
  void countLength(size_t Len, int Delta);

  size_t Max;
  uint64_t NextSerial = 0;
  /// Front = most recently used.
  std::list<Entry> Lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  /// How many entries have each prefix length.
  std::vector<uint32_t> LenCount;
  /// The distinct prefix lengths currently cached, sorted ascending and
  /// kept in sync with LenCount on insert/evict.
  std::vector<uint32_t> SortedLens;
};

/// Runs a subject body on a fiber, minting and resuming prefix
/// checkpoints. One engine per campaign; see the file comment for the
/// contracts.
class PrefixResumeEngine final : public PastEndHook {
public:
  /// \p RunBody executes the subject against a context (the core layer
  /// passes Subject::run); \p CacheSize bounds the checkpoint pool.
  /// Inputs shorter than \p MinInput bypass the machinery entirely (no
  /// fiber, no probe, no mint): below the break-even length the fixed
  /// per-run cost — two context switches and the checkpoint memcpy —
  /// exceeds what skipping the prefix saves, and a parser-directed
  /// search executes far more short inputs than long ones. A non-zero
  /// \p RungStride additionally mints up to \p RungCap mid-run ladder
  /// checkpoints per execution, one at the first read crossing each
  /// stride multiple above the resume point. All four are purely
  /// throughput knobs: results are identical at any values.
  PrefixResumeEngine(std::function<int(ExecutionContext &)> RunBody,
                     size_t CacheSize, size_t MinInput = 0,
                     uint32_t RungStride = 0, uint32_t RungCap = 0);
  ~PrefixResumeEngine();

  /// True when this build and process support checkpointed fibers.
  static bool available() { return PFUZZ_FIBERS_AVAILABLE && Fiber::available(); }

  /// One full instrumented execution of \p Input, resumed from the
  /// longest cached prefix when possible, cold otherwise. Returns the
  /// complete RunResult, byte-identical to a cold execution; the
  /// reference stays valid until the next execute() or engine
  /// destruction. \p Scratch lends recycled buffer storage exactly like
  /// Subject::execute's pooled form — the result may live there or in an
  /// engine-owned pool slot (when the run minted checkpoints, which
  /// share its final result), so callers must read through the returned
  /// reference, never through \p Scratch.
  const RunResult &execute(std::string_view Input, RunResult &Scratch);

  /// Length of the longest cached checkpoint prefix of \p Input
  /// (byte-verified), without promoting any entry or touching stats.
  /// Warmth-aware speculation orders its prefetch window by this.
  size_t warmPrefixLength(std::string_view Input) const;

  const ResumeStats &stats() const { return Stats; }
  const PrefixResumeCache &cache() const { return Cache; }

private:
  bool onPastEnd(ExecutionContext &Ctx) override;
  bool onRungReached(ExecutionContext &Ctx, uint32_t Index) override;
  /// Shared mint path for both suspension points. Returns true on the
  /// restore path (the caller must report "input changed" upward).
  bool mintCheckpoint(ExecutionContext &Ctx, size_t PrefixLen,
                      uint32_t RungDepth);
  /// Returns a pool slot whose RunResult no live checkpoint references.
  std::shared_ptr<RunResult> acquireFinalSlot();
  static void fiberMain(void *SelfV);

  std::function<int(ExecutionContext &)> RunBody;
  PrefixResumeCache Cache;
  /// Inputs below this length run plainly off the fiber (see ctor).
  size_t MinInput;
  /// Ladder geometry: rungs sit at multiples of RungStride, at most
  /// RungCap per run. Stride 0 disables mid-run checkpoints.
  uint32_t RungStride;
  uint32_t RungCap;
  Fiber F;
  ResumeStats Stats;
  /// Rolling FNV-1a: PrefixHash[L] covers Input[0..L) of the input under
  /// execution. Recomputed in one O(n) pass per execute().
  std::vector<uint64_t> PrefixHash;
  /// Every RunResult a surviving checkpoint shares lives here; a slot is
  /// recycled for a new run's final once no entry references it
  /// (use_count back to 1). Bounded by the cache capacity plus one.
  std::vector<std::shared_ptr<RunResult>> FinalPool;
  /// Checkpoints minted by the current run, awaiting their shared final
  /// at the epilogue. The serial detects entries recycled mid-run.
  struct PendingMint {
    PrefixResumeCache::Entry *E;
    uint64_t Serial;
  };
  std::vector<PendingMint> PendingMints;
  /// The context lives in engine-owned storage so its address — captured
  /// by reference into every subject frame on the fiber — is identical
  /// across the runs a checkpoint spans.
  alignas(ExecutionContext) unsigned char CtxMem[sizeof(ExecutionContext)];
  ExecutionContext *Ctx = nullptr;
  int ExitCode = 1;
  /// One past-end checkpoint per run, at the first past-end read.
  bool MintedThisRun = false;
  /// Ladder state of the current run: rungs left to mint and the depth
  /// counter stamped into them.
  uint32_t RungsLeft = 0;
  uint32_t CurRungDepth = 0;
};

} // namespace pfuzz

#endif // PFUZZ_RUNTIME_PREFIXRESUMECACHE_H
