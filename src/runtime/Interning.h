//===- runtime/Interning.h - Process-wide function-name interning -*- C++ -*-=//
//
// Part of the pfuzz project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide interning of the __func__ literals PF_FUNC hands to the
/// runtime. The set of distinct function-name pointers is fixed at link
/// time and tiny (one per instrumented function), so interning happens in
/// a flat open-addressed table keyed by pointer identity: lookups are a
/// couple of probes with no locking, and only the first-ever sighting of
/// a literal takes a mutex to register it. This replaces the per-execution
/// std::map every ExecutionContext used to build — tree-node allocations
/// and O(log n) probes on every function entry, paid millions of times per
/// campaign.
///
/// This is the one piece of process-wide state instrumented executions
/// share, so its thread-safety carries the whole runtime's concurrency
/// contract: speculative prefetch workers and parallel campaign seeds
/// intern concurrently with no synchronization beyond this table's own
/// (lock-free probes, mutex only on first-ever registration — a bounded
/// startup cost, since the set of literals is fixed at link time).
///
//===----------------------------------------------------------------------===//

#ifndef PFUZZ_RUNTIME_INTERNING_H
#define PFUZZ_RUNTIME_INTERNING_H

#include <cstdint>

namespace pfuzz {

/// Returns the process-wide dense id of the function-name literal
/// \p Name, assigning the next free id on first sight. Keyed by pointer
/// identity — string literals are stable for the process lifetime, which
/// is exactly the key the old per-execution map used. Thread-safe:
/// lock-free for already-registered names, mutex-guarded registration.
uint32_t internFunctionName(const char *Name);

} // namespace pfuzz

#endif // PFUZZ_RUNTIME_INTERNING_H
